#include "engine/verify_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace dkg::engine {

namespace {
std::atomic<bool> g_pool_on{true};
thread_local unsigned t_verify_jobs = 0;
}  // namespace

bool verify_pool_enabled() { return g_pool_on.load(std::memory_order_relaxed); }
void set_verify_pool(bool on) { g_pool_on.store(on, std::memory_order_relaxed); }

unsigned current_verify_jobs() { return t_verify_jobs; }

ScopedVerifyJobs::ScopedVerifyJobs(unsigned jobs) : prev_(t_verify_jobs) { t_verify_jobs = jobs; }
ScopedVerifyJobs::~ScopedVerifyJobs() { t_verify_jobs = prev_; }

// --- scope state ------------------------------------------------------------

/// All synchronization runs through the pool's one mutex: tasks are tens of
/// microseconds of modular arithmetic, so a ~100ns lock per claim is noise,
/// and a single lock order makes the owner/worker/destructor interplay easy
/// to reason about (and for TSan to certify).
struct VerifyScope::State {
  std::vector<std::function<void()>> fns;
  std::size_t next = 0;      // first unclaimed task
  std::size_t finished = 0;  // tasks fully executed
  std::exception_ptr err;    // first task exception (rethrown at join)
  std::condition_variable done_cv;
};

struct VerifyPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::vector<std::shared_ptr<VerifyScope::State>> active;  // scopes with (possible) work
  std::vector<std::thread> workers;
  bool stop = false;
  unsigned jobs = 1;

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      std::shared_ptr<VerifyScope::State> st;
      for (const auto& s : active) {
        if (s->next < s->fns.size()) {
          st = s;
          break;
        }
      }
      if (st == nullptr) {
        if (stop) return;
        work_cv.wait(lock);
        continue;
      }
      run_one(*st, lock);
    }
  }

  /// Claims and runs one task of `st`. Called with `lock` held; releases it
  /// around the task body.
  void run_one(VerifyScope::State& st, std::unique_lock<std::mutex>& lock) {
    std::size_t idx = st.next++;
    std::function<void()> fn = std::move(st.fns[idx]);
    lock.unlock();
    std::exception_ptr err;
    {
      common::WorkerTaskGuard guard;
      try {
        fn();
      } catch (...) {
        err = std::current_exception();
      }
    }
    lock.lock();
    if (err && !st.err) st.err = err;
    if (++st.finished == st.fns.size()) st.done_cv.notify_all();
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    work_cv.notify_all();
    for (std::thread& t : workers) t.join();
    workers.clear();
    stop = false;
  }
};

VerifyPool& VerifyPool::instance() {
  static VerifyPool pool;
  return pool;
}

VerifyPool::Impl& VerifyPool::impl() {
  static Impl* impl = new Impl;  // leaked: workers may outlive static dtors
  return *impl;
}

VerifyPool::~VerifyPool() { impl().stop_workers(); }

void VerifyPool::configure(unsigned jobs) {
  Impl& im = impl();
  if (jobs < 1) jobs = 1;
  im.stop_workers();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.jobs = jobs;
  }
  for (unsigned i = 0; i + 1 < jobs; ++i) {
    im.workers.emplace_back([&im] { im.worker_loop(); });
  }
}

unsigned VerifyPool::configured_jobs() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.jobs;
}

unsigned VerifyPool::cooperative_jobs(unsigned sweep_jobs) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (sweep_jobs == 0) sweep_jobs = hw;  // SweepDriver's own default
  unsigned share = hw / sweep_jobs;
  return share > 1 ? share : 1;
}

namespace {
unsigned effective_jobs() {
  unsigned configured = VerifyPool::instance().configured_jobs();
  unsigned wanted = current_verify_jobs();
  if (wanted == 0 || wanted > configured) wanted = configured;
  return wanted;
}
}  // namespace

bool verify_parallel_active() {
  return verify_pool_enabled() && effective_jobs() > 1 && !common::in_worker_task();
}

// --- VerifyScope ------------------------------------------------------------

VerifyScope::VerifyScope() {
  if (!verify_parallel_active()) return;
  parallel_ = true;
  jobs_ = effective_jobs();
  state_ = std::make_shared<State>();
  VerifyPool::Impl& im = VerifyPool::impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.active.push_back(state_);
}

VerifyScope::~VerifyScope() {
  if (!parallel_) return;
  try {
    join();
  } catch (...) {
    // A task exception surfacing only at destruction has no handler to go
    // to; join() already guaranteed no task still runs.
  }
  VerifyPool::Impl& im = VerifyPool::impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.active.erase(std::remove(im.active.begin(), im.active.end(), state_), im.active.end());
}

void VerifyScope::push(std::function<void()> fn) {
  if (!parallel_) {
    // Inline mode: run now, on the caller, under the same purity guard the
    // workers use — byte-identical effects, sequential order.
    common::WorkerTaskGuard guard;
    fn();
    return;
  }
  joined_ = false;
  VerifyPool::Impl& im = VerifyPool::impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    state_->fns.push_back(std::move(fn));
  }
  im.work_cv.notify_one();
}

void VerifyScope::join() {
  if (!parallel_ || joined_) return;
  joined_ = true;
  VerifyPool::Impl& im = VerifyPool::impl();
  std::unique_lock<std::mutex> lock(im.mu);
  // Help drain our own queue: the owner is one of the pool's `jobs` threads.
  while (state_->next < state_->fns.size()) im.run_one(*state_, lock);
  state_->done_cv.wait(lock, [&] { return state_->finished == state_->fns.size(); });
  std::exception_ptr err = state_->err;
  state_->err = nullptr;
  state_->fns.clear();
  state_->next = 0;
  state_->finished = 0;
  if (err) {
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace dkg::engine
