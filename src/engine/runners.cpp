// Concrete ScenarioRunner implementations: each wraps one existing harness
// and translates ScenarioSpec -> harness config and harness state ->
// ScenarioResult. All protocol-driving logic that used to live inline in
// the bench mains is concentrated here.
#include "engine/runner.hpp"

#include <algorithm>

#include "baseline/gennaro_dkg.hpp"
#include "baseline/joint_feldman.hpp"
#include "baseline/sync_network.hpp"
#include "dkg/runner.hpp"
#include "engine/verify_pool.hpp"
#include "groupmod/node_add.hpp"
#include "proactive/runner.hpp"
#include "vss/avss.hpp"

namespace dkg::engine {

namespace {

core::RunnerConfig runner_config(const ScenarioSpec& spec) {
  core::RunnerConfig cfg;
  cfg.grp = spec.grp;
  cfg.n = spec.n;
  cfg.t = spec.t;
  cfg.f = spec.f;
  cfg.seed = spec.seed;
  cfg.tau = spec.tau;
  cfg.d_kappa = spec.d_kappa;
  cfg.mode = spec.mode;
  cfg.delay_lo = spec.delay_lo;
  cfg.delay_hi = spec.delay_hi;
  cfg.slow_nodes = spec.slow_nodes;
  cfg.slow_penalty = spec.slow_penalty;
  cfg.timeout_base = spec.timeout_base;
  return cfg;
}

void apply_crashes(sim::Simulator& sim, const ScenarioSpec& spec) {
  for (const CrashSpec& c : spec.crashes) {
    sim.schedule_crash(c.node, c.crash_at);
    if (c.recover_at != 0) sim.schedule_recover(c.node, c.recover_at);
  }
}

/// One HybridVSS sharing among n nodes, with the spec's crash/recover
/// cycles (each recovery optionally followed by a RecoverOp so the node
/// runs the §3 help/replay flow).
class VssScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    vss::VssParams params;
    params.grp = spec.grp;
    params.n = spec.n;
    params.t = spec.t;
    params.f = spec.f;
    params.d_kappa = spec.d_kappa;
    params.mode = spec.mode;
    sim::Simulator sim(spec.n, std::make_unique<sim::UniformDelay>(spec.delay_lo, spec.delay_hi),
                       spec.seed);
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      sim.set_node(i, std::make_unique<vss::VssNode>(params, i));
    }
    vss::SessionId sid{1, 1};
    crypto::Drbg rng(spec.seed);
    sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, crypto::Scalar::random(*spec.grp, rng)),
                      0);
    apply_crashes(sim, spec);
    if (spec.post_recover_op) {
      for (const CrashSpec& c : spec.crashes) {
        if (c.recover_at != 0) {
          sim.post_operator(c.node, std::make_shared<vss::RecoverOp>(sid), c.recover_at + 10);
        }
      }
    }
    ScenarioResult res;
    res.completed = sim.run(spec.max_events);
    bool all_shared = res.completed;
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      auto& node = dynamic_cast<vss::VssNode&>(sim.node(i));
      all_shared = all_shared && node.has_instance(sid) && node.instance(sid).has_shared();
    }
    res.ok = all_shared;
    res.messages = sim.metrics().total_messages();
    res.bytes = sim.metrics().total_bytes();
    res.completion_time = sim.now();
    return res;
  }
};

/// One AVSS sharing (the paper's §3 comparison target).
class AvssScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    vss::AvssParams params{spec.grp, spec.n, spec.t};
    sim::Simulator sim(spec.n, std::make_unique<sim::UniformDelay>(spec.delay_lo, spec.delay_hi),
                       spec.seed);
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      sim.set_node(i, std::make_unique<vss::AvssNode>(params, i));
    }
    vss::SessionId sid{1, 1};
    crypto::Drbg rng(spec.seed);
    sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, crypto::Scalar::random(*spec.grp, rng)),
                      0);
    ScenarioResult res;
    res.completed = sim.run(spec.max_events);
    bool all_shared = res.completed;
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      auto& node = dynamic_cast<vss::AvssNode&>(sim.node(i));
      all_shared = all_shared && node.instance(sid).has_shared();
    }
    res.ok = all_shared;
    res.messages = sim.metrics().total_messages();
    res.bytes = sim.metrics().total_bytes();
    res.completion_time = sim.now();
    return res;
  }
};

/// Full HybridDKG run through core::DkgRunner, splitting VSS-layer and
/// agreement-layer traffic the way the paper's accounting does.
class DkgScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    core::DkgRunner runner(runner_config(spec));
    apply_crashes(runner.simulator(), spec);
    runner.start_all();
    ScenarioResult res;
    res.completed = runner.run_to_completion(spec.min_outputs, spec.max_events);
    res.ok = res.completed;
    const sim::Metrics& m = runner.simulator().metrics();
    res.messages = m.total_messages();
    res.bytes = m.total_bytes();
    res.completion_time = runner.simulator().now();
    sim::TypeStats vs = m.by_prefix("vss.");
    res.set_extra("vss_messages", vs.count);
    res.set_extra("vss_bytes", vs.bytes);
    sim::TypeStats ds = m.by_prefix("dkg.");
    res.set_extra("agreement_messages", ds.count);
    res.set_extra("agreement_bytes", ds.bytes);
    res.set_extra("lead_changes", m.by_prefix("dkg.lead-ch").count);
    std::uint64_t final_view = 1;
    for (sim::NodeId id : runner.completed_nodes()) {
      final_view = std::max(final_view, runner.dkg_node(id).output().view);
    }
    res.set_extra("final_view", final_view);
    return res;
  }
};

/// DKG bootstrap plus one share-renewal phase (§5.2), with the spec's
/// renewal_crashed nodes going down and recovering mid-phase.
class ProactiveScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    proactive::ProactiveRunner runner(runner_config(spec));
    ScenarioResult res;
    bool dkg_ok = runner.run_dkg(spec.max_events);
    res.completed = runner.last_phase_completed();
    res.set_extra("dkg_ok", dkg_ok);
    if (!dkg_ok) return res;
    std::uint64_t dkg_msgs = runner.last_metrics().total_messages();
    std::uint64_t dkg_bytes = runner.last_metrics().total_bytes();
    res.set_extra("dkg_messages", dkg_msgs);
    res.set_extra("dkg_bytes", dkg_bytes);
    bool renewal_ok = runner.run_renewal(spec.renewal_crashed, spec.max_events);
    res.completed = runner.last_phase_completed();
    res.set_extra("renewal_ok", renewal_ok);
    if (!renewal_ok) {
      res.messages = dkg_msgs;
      res.bytes = dkg_bytes;
      return res;
    }
    std::uint64_t renew_msgs = runner.last_metrics().total_messages();
    std::uint64_t renew_bytes = runner.last_metrics().total_bytes();
    res.set_extra("renewal_messages", renew_msgs);
    res.set_extra("renewal_bytes", renew_bytes);
    res.ok = runner.shares_consistent();
    res.messages = dkg_msgs + renew_msgs;
    res.bytes = dkg_bytes + renew_bytes;
    return res;
  }
};

/// Node addition (§6.2): DKG bootstrap, then one resharing round on a fresh
/// network with a joining node collecting t+1 verified subshares.
class NodeAddScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    ScenarioResult res;
    proactive::ProactiveRunner boot(runner_config(spec));
    bool dkg_ok = boot.run_dkg(spec.max_events);
    res.completed = boot.last_phase_completed();
    res.set_extra("dkg_ok", dkg_ok);
    if (!dkg_ok) return res;

    auto keyring =
        crypto::Keyring::generate(*spec.grp, spec.n, spec.derived_seed("node-add/keyring"));
    core::DkgParams params;
    params.vss.grp = spec.grp;
    params.vss.n = spec.n;
    params.vss.t = spec.t;
    params.vss.f = spec.f;
    params.vss.keyring = keyring;
    params.tau = spec.tau + 1;
    params.timeout_base = spec.timeout_base != 0 ? spec.timeout_base : 20'000;
    sim::Simulator sim(spec.n, std::make_unique<sim::UniformDelay>(spec.delay_lo, spec.delay_hi),
                       spec.seed);
    sim::NodeId new_id = sim.add_node_slot();
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      sim.set_node(
          i, std::make_unique<groupmod::NodeAddNode>(params, i, boot.states()[i], new_id));
    }
    auto joining = std::make_unique<groupmod::JoiningNode>(*spec.grp, spec.t, new_id, params.tau);
    groupmod::JoiningNode* j = joining.get();
    sim.set_node(new_id, std::move(joining));
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      sim.post_operator(i, std::make_shared<core::DkgStartOp>(params.tau, std::nullopt), 0);
    }
    res.completed = sim.run_until([&] { return j->has_share(); }, spec.max_events);
    res.ok = res.completed && j->has_share();
    res.messages = sim.metrics().total_messages();
    res.bytes = sim.metrics().total_bytes();
    res.completion_time = sim.now();
    res.set_extra("subshares", sim.metrics().by_prefix("gm.subshare").count);
    return res;
  }
};

/// Synchronous round-based baselines (Joint-Feldman [1], Gennaro et al.
/// [9]) on the broadcast-channel substrate the classical literature assumes.
class SyncBaselineScenarioRunner : public ScenarioRunner {
 public:
  explicit SyncBaselineScenarioRunner(bool gennaro) : gennaro_(gennaro) {}

  ScenarioResult run(const ScenarioSpec& spec) const override {
    baseline::SyncNetwork net(spec.n, spec.seed);
    if (gennaro_) {
      baseline::GennaroParams params{spec.grp, spec.n, spec.t};
      for (sim::NodeId i = 1; i <= spec.n; ++i) {
        net.set_node(i, std::make_unique<baseline::GennaroNode>(
                            params, i, net.rng().fork("gjkr/" + std::to_string(i))));
      }
    } else {
      baseline::JfParams params{spec.grp, spec.n, spec.t};
      for (sim::NodeId i = 1; i <= spec.n; ++i) {
        net.set_node(i, std::make_unique<baseline::JointFeldmanNode>(
                            params, i, net.rng().fork("jf/" + std::to_string(i))));
      }
    }
    std::size_t rounds = net.run(spec.max_rounds);
    ScenarioResult res;
    bool all_done = true;
    for (sim::NodeId i = 1; i <= spec.n; ++i) all_done = all_done && net.node(i).done();
    res.completed = all_done;
    res.ok = all_done;
    res.messages = net.metrics().total_messages();
    res.bytes = net.metrics().total_bytes();
    res.completion_time = rounds;
    res.set_extra("rounds", static_cast<std::uint64_t>(rounds));
    return res;
  }

 private:
  bool gennaro_;
};

}  // namespace

const ScenarioRunner& runner_for(Variant v) {
  static const VssScenarioRunner vss;
  static const AvssScenarioRunner avss;
  static const DkgScenarioRunner dkg;
  static const ProactiveScenarioRunner proactive;
  static const NodeAddScenarioRunner node_add;
  static const SyncBaselineScenarioRunner joint_feldman(false);
  static const SyncBaselineScenarioRunner gennaro(true);
  switch (v) {
    case Variant::HybridVss: return vss;
    case Variant::Avss: return avss;
    case Variant::Dkg: return dkg;
    case Variant::Proactive: return proactive;
    case Variant::NodeAdd: return node_add;
    case Variant::JointFeldman: return joint_feldman;
    case Variant::Gennaro: return gennaro;
  }
  return dkg;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  // The spec's verify-jobs cap rides a thread-local so every verification
  // site under this harness run (and nothing outside it) sees it — the
  // SweepDriver's workers each run whole scenarios, so scoping per-run is
  // exactly per-thread.
  ScopedVerifyJobs jobs(spec.verify_jobs);
  return runner_for(spec.variant).run(spec);
}

}  // namespace dkg::engine
