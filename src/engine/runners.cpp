// Concrete ScenarioRunner implementations: each wraps one existing harness
// and translates ScenarioSpec -> harness config and harness state ->
// ScenarioResult. All protocol-driving logic that used to live inline in
// the bench mains is concentrated here.
#include "engine/runner.hpp"

#include <algorithm>
#include <memory>

#include "baseline/gennaro_dkg.hpp"
#include "crypto/lagrange.hpp"
#include "baseline/joint_feldman.hpp"
#include "baseline/sync_network.hpp"
#include "dkg/byzantine_leader.hpp"
#include "dkg/runner.hpp"
#include "engine/verify_pool.hpp"
#include "groupmod/node_add.hpp"
#include "proactive/runner.hpp"
#include "sim/adversary.hpp"
#include "vss/avss.hpp"
#include "vss/byzantine_dealer.hpp"

namespace dkg::engine {

namespace {

core::RunnerConfig runner_config(const ScenarioSpec& spec) {
  core::RunnerConfig cfg;
  cfg.grp = spec.grp;
  cfg.n = spec.n;
  cfg.t = spec.t;
  cfg.f = spec.f;
  cfg.seed = spec.seed;
  cfg.tau = spec.tau;
  cfg.d_kappa = spec.d_kappa;
  cfg.mode = spec.mode;
  cfg.delay_lo = spec.delay_lo;
  cfg.delay_hi = spec.delay_hi;
  cfg.slow_nodes = spec.slow_nodes;
  cfg.slow_penalty = spec.slow_penalty;
  cfg.timeout_base = spec.timeout_base;
  if (spec.adversary.active()) {
    // Only adversarial specs install the factory: the built-in construction
    // is bit-identical for kind == None, and leaving it in place keeps the
    // pre-adversary configs byte-for-byte unchanged.
    cfg.delay_factory = [spec]() { return make_delay_model(spec); };
  }
  return cfg;
}

void apply_crashes(sim::Simulator& sim, const ScenarioSpec& spec) {
  // CrashSpec and sim::CrashWindow share the recover_at == 0 "stays down"
  // contract, so the engine path delegates to the one FaultPlan::apply
  // implementation instead of duplicating the skip-when-zero rule.
  std::vector<sim::CrashWindow> windows;
  windows.reserve(spec.crashes.size());
  for (const CrashSpec& c : spec.crashes) {
    windows.push_back(sim::CrashWindow{c.node, c.crash_at, c.recover_at});
  }
  sim::FaultPlan(std::move(windows)).apply(sim);
}

bool is_dealer_kind(AdversaryKind k) {
  return k == AdversaryKind::SilentDealer || k == AdversaryKind::EquivocatingDealer ||
         k == AdversaryKind::InconsistentDealer || k == AdversaryKind::SelectiveDealer;
}

bool is_leader_kind(AdversaryKind k) {
  return k == AdversaryKind::SilentLeader || k == AdversaryKind::SelectiveLeader;
}

vss::DealerStrategy dealer_strategy(const AdversarySpec& adv) {
  vss::DealerStrategy s;
  switch (adv.kind) {
    case AdversaryKind::SilentDealer: s.kind = vss::DealerStrategy::Kind::Silent; break;
    case AdversaryKind::EquivocatingDealer: s.kind = vss::DealerStrategy::Kind::Equivocate; break;
    case AdversaryKind::InconsistentDealer:
      s.kind = vss::DealerStrategy::Kind::InconsistentRows;
      break;
    case AdversaryKind::SelectiveDealer: s.kind = vss::DealerStrategy::Kind::SelectiveSend; break;
    default: break;
  }
  s.classes = adv.classes;
  s.victims = adv.victims;
  s.recipients = adv.recipients;
  return s;
}

/// One HybridVSS sharing among n nodes, with the spec's crash/recover
/// cycles (each recovery optionally followed by a RecoverOp so the node
/// runs the §3 help/replay flow).
class VssScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    vss::VssParams params;
    params.grp = spec.grp;
    params.n = spec.n;
    params.t = spec.t;
    params.f = spec.f;
    params.d_kappa = spec.d_kappa;
    params.mode = spec.mode;
    sim::Simulator sim(spec.n, make_delay_model(spec), spec.seed);
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      sim.set_node(i, std::make_unique<vss::VssNode>(params, i));
    }
    const AdversarySpec& adv = spec.adversary;
    std::set<sim::NodeId> replaced;
    std::shared_ptr<sim::Coalition> coalition;
    if (adv.active()) {
      std::set<sim::NodeId> corrupted = adversary_corrupted(spec);
      if (is_dealer_kind(adv.kind)) {
        sim.set_node(1, std::make_unique<vss::ByzantineDealerNode>(params, 1,
                                                                   dealer_strategy(adv)));
        replaced = {1};
      } else if (adv.kind == AdversaryKind::Collusion) {
        coalition = std::make_shared<sim::Coalition>(corrupted);
        for (sim::NodeId id : corrupted) {
          sim.set_node(id, std::make_unique<sim::CollusionNode>(coalition, id));
        }
        replaced = corrupted;
      } else if (is_leader_kind(adv.kind)) {
        // No leader role in a lone sharing: the closest strategy is a
        // fail-silent dealer (selective delivery is the dealer knob here).
        sim.set_node(1, std::make_unique<vss::SilentNode>());
        replaced = {1};
      } else if (adv.kind == AdversaryKind::ChurnStorm) {
        churn_storm_plan(spec).apply(sim);
      }
      // AdaptiveDelay / Partition act through make_delay_model alone.
    }
    vss::SessionId sid{1, 1};
    crypto::Drbg rng(spec.seed);
    sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, crypto::Scalar::random(*spec.grp, rng)),
                      0);
    apply_crashes(sim, spec);
    if (spec.post_recover_op) {
      for (const CrashSpec& c : spec.crashes) {
        if (c.recover_at != 0) {
          sim.post_operator(c.node, std::make_shared<vss::RecoverOp>(sid), c.recover_at + 10);
        }
      }
    }
    ScenarioResult res;
    res.completed = sim.run(spec.max_events);
    std::size_t honest_total = 0;
    std::size_t done = 0;
    std::set<Bytes> digests;
    bool shares_valid = true;
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      if (replaced.count(i) != 0) continue;
      ++honest_total;
      auto& node = dynamic_cast<vss::VssNode&>(sim.node(i));
      if (!node.has_instance(sid) || !node.instance(sid).has_shared()) continue;
      ++done;
      if (adv.active()) {
        const vss::SharedOutput& out = node.instance(sid).shared();
        digests.insert(out.commitment->digest());
        // reveal-ok: harness consistency audit — each completed share is
        // re-verified against the agreed commitment (receiver-local check).
        shares_valid = shares_valid && out.commitment->verify_point(0, i, out.share.reveal());
      }
    }
    res.messages = sim.metrics().total_messages();
    res.bytes = sim.metrics().total_bytes();
    res.completion_time = sim.now();
    if (!adv.active()) {
      res.ok = res.completed && done == honest_total;
    } else {
      // Safety (§3 agreement): every completed honest node holds the same
      // commitment and a share valid under it — no honest-output
      // divergence, no matter what the dealer or colluders did.
      bool agreement = digests.size() <= 1 && shares_valid;
      set_adversary_verdicts(spec, res, done, honest_total, agreement);
      if (adv.kind == AdversaryKind::SilentDealer ||
          adv.kind == AdversaryKind::SelectiveDealer || is_leader_kind(adv.kind)) {
        // These dealers can never assemble an echo quorum: disqualification
        // means no honest node completed the sharing at all.
        res.set_extra("dealer_disqualified", done == 0);
      }
    }
    return res;
  }
};

/// One AVSS sharing (the paper's §3 comparison target).
class AvssScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    vss::AvssParams params{spec.grp, spec.n, spec.t};
    sim::Simulator sim(spec.n, make_delay_model(spec), spec.seed);
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      sim.set_node(i, std::make_unique<vss::AvssNode>(params, i));
    }
    const AdversarySpec& adv = spec.adversary;
    std::set<sim::NodeId> replaced;
    std::shared_ptr<sim::Coalition> coalition;
    if (adv.active()) {
      std::set<sim::NodeId> corrupted = adversary_corrupted(spec);
      if (is_dealer_kind(adv.kind) || is_leader_kind(adv.kind)) {
        // The AVSS baseline's ByzantineDealerNode speaks HybridVSS messages,
        // so every dealer strategy degrades to fail-silence here (a silent
        // dealer voids liveness either way — adversary_expects_liveness).
        sim.set_node(1, std::make_unique<vss::SilentNode>());
        replaced = {1};
      } else if (adv.kind == AdversaryKind::Collusion) {
        coalition = std::make_shared<sim::Coalition>(corrupted);
        for (sim::NodeId id : corrupted) {
          sim.set_node(id, std::make_unique<sim::CollusionNode>(coalition, id));
        }
        replaced = corrupted;
      } else if (adv.kind == AdversaryKind::ChurnStorm) {
        churn_storm_plan(spec).apply(sim);
      }
    }
    vss::SessionId sid{1, 1};
    crypto::Drbg rng(spec.seed);
    sim.post_operator(1, std::make_shared<vss::ShareOp>(sid, crypto::Scalar::random(*spec.grp, rng)),
                      0);
    ScenarioResult res;
    res.completed = sim.run(spec.max_events);
    std::size_t honest_total = 0;
    std::size_t done = 0;
    std::vector<std::pair<std::uint64_t, crypto::Scalar>> pts;
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      if (replaced.count(i) != 0) continue;
      ++honest_total;
      auto& node = dynamic_cast<vss::AvssNode&>(sim.node(i));
      if (!node.instance(sid).has_shared()) continue;
      ++done;
      if (adv.active()) {
        // reveal-ok: harness consistency audit — honest outputs are pooled
        // to check they lie on one degree-t polynomial.
        pts.emplace_back(i, node.instance(sid).share().reveal());
      }
    }
    res.messages = sim.metrics().total_messages();
    res.bytes = sim.metrics().total_bytes();
    res.completion_time = sim.now();
    if (!adv.active()) {
      res.ok = res.completed && done == honest_total;
    } else {
      // Safety: every completed honest share must lie on the same degree-t
      // polynomial — interpolate from the first t+1 and re-derive the rest.
      bool agreement = true;
      if (pts.size() > spec.t + 1) {
        std::vector<std::pair<std::uint64_t, crypto::Scalar>> basis(
            pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(spec.t + 1));
        for (std::size_t k = spec.t + 1; k < pts.size(); ++k) {
          agreement = agreement &&
                      crypto::interpolate_at(*spec.grp, basis, pts[k].first) == pts[k].second;
        }
      }
      set_adversary_verdicts(spec, res, done, honest_total, agreement);
    }
    return res;
  }
};

/// Full HybridDKG run through core::DkgRunner, splitting VSS-layer and
/// agreement-layer traffic the way the paper's accounting does.
class DkgScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    core::DkgRunner runner(runner_config(spec));
    const AdversarySpec& adv = spec.adversary;
    std::shared_ptr<sim::Coalition> coalition;
    std::set<sim::NodeId> corrupted;
    std::set<sim::NodeId> storm_victims;
    if (adv.active()) {
      corrupted = adversary_corrupted(spec);
      if (adv.kind == AdversaryKind::SilentLeader) {
        runner.replace_node(1, std::make_unique<core::ByzantineLeaderNode>(
                                   runner.params(), 1, core::LeaderFault::Mute));
      } else if (adv.kind == AdversaryKind::SelectiveLeader) {
        runner.replace_node(1, std::make_unique<core::ByzantineLeaderNode>(
                                   runner.params(), 1, core::LeaderFault::SelectiveSend));
      } else if (adv.kind == AdversaryKind::Collusion) {
        coalition = std::make_shared<sim::Coalition>(corrupted);
        for (sim::NodeId id : corrupted) {
          runner.replace_node(id, std::make_unique<sim::CollusionNode>(coalition, id));
        }
      } else if (is_dealer_kind(adv.kind)) {
        // In the DKG every node deals; a Byzantine VSS dealer's sharing is
        // simply never completed by honest nodes, so fail-silence at the
        // corrupted ids exercises the same disqualification path (Q must
        // exclude them) without needing a full hostile DkgNode.
        for (sim::NodeId id : corrupted) {
          runner.replace_node(id, std::make_unique<vss::SilentNode>());
        }
      } else if (adv.kind == AdversaryKind::ChurnStorm) {
        sim::FaultPlan plan = churn_storm_plan(spec);
        for (const sim::CrashWindow& w : plan.windows()) storm_victims.insert(w.node);
        runner.apply_faults(plan);
      }
    }
    apply_crashes(runner.simulator(), spec);
    runner.start_all();
    std::size_t min_outputs = spec.min_outputs;
    if (adv.kind == AdversaryKind::AdaptiveDelay && min_outputs == 0) {
      // E10: the adaptive adversary stalls only links touching its nodes, so
      // the run measures the *honest mesh's* completion time — the stalled
      // members finish eventually but are not waited for.
      min_outputs = spec.n - corrupted.size();
    } else if (adv.kind == AdversaryKind::ChurnStorm && min_outputs == 0) {
      // The one-shot DKG runs no §3/§5.3 recovery operators, so a victim
      // whose outage swallowed a sharing cannot be promised completion —
      // the liveness verdict covers the never-crashed mesh (victims that do
      // catch up are welcome but not waited for).
      min_outputs = spec.n - storm_victims.size();
    }
    ScenarioResult res;
    res.completed = runner.run_to_completion(min_outputs, spec.max_events);
    res.ok = res.completed;
    const sim::Metrics& m = runner.simulator().metrics();
    res.messages = m.total_messages();
    res.bytes = m.total_bytes();
    res.completion_time = runner.simulator().now();
    sim::TypeStats vs = m.by_prefix("vss.");
    res.set_extra("vss_messages", vs.count);
    res.set_extra("vss_bytes", vs.bytes);
    sim::TypeStats ds = m.by_prefix("dkg.");
    res.set_extra("agreement_messages", ds.count);
    res.set_extra("agreement_bytes", ds.bytes);
    res.set_extra("lead_changes", m.by_prefix("dkg.lead-ch").count);
    std::uint64_t final_view = 1;
    for (sim::NodeId id : runner.completed_nodes()) {
      final_view = std::max(final_view, runner.dkg_node(id).output().view);
    }
    res.set_extra("final_view", final_view);
    if (adv.active()) {
      std::vector<sim::NodeId> honest = runner.honest_nodes();
      std::vector<sim::NodeId> done = runner.completed_nodes();
      if (adv.kind == AdversaryKind::AdaptiveDelay || adv.kind == AdversaryKind::ChurnStorm) {
        // Stalled (adaptive-delay) and crash-recovered (storm) members are
        // adversary-throttled, not protocol-faulty: the liveness verdict
        // covers the untouched honest mesh (E10 / the f-budget claim).
        const std::set<sim::NodeId>& excused =
            adv.kind == AdversaryKind::AdaptiveDelay ? corrupted : storm_victims;
        auto drop = [&](std::vector<sim::NodeId>& v) {
          v.erase(std::remove_if(v.begin(), v.end(),
                                 [&](sim::NodeId id) { return excused.count(id) != 0; }),
                  v.end());
        };
        drop(honest);
        drop(done);
      }
      // Safety (Definition 4.1): some honest node finished AND all finished
      // honest nodes agree on (Q, public key, commitment, valid shares).
      bool agreement = !done.empty() && runner.outputs_consistent();
      if (is_dealer_kind(adv.kind) || adv.kind == AdversaryKind::Collusion) {
        // The corrupted dealers never complete a sharing, so no honest
        // node may carry them in the agreed dealer set Q.
        bool excluded = !done.empty();
        for (sim::NodeId id : done) {
          const core::DkgOutput& out = runner.dkg_node(id).output();
          for (sim::NodeId bad : corrupted) {
            excluded = excluded && !std::binary_search(out.q.begin(), out.q.end(), bad);
          }
        }
        res.set_extra("bad_dealers_disqualified", excluded);
        agreement = agreement && excluded;
      }
      set_adversary_verdicts(spec, res, done.size(), honest.size(), agreement);
    }
    return res;
  }
};

/// DKG bootstrap plus one share-renewal phase (§5.2), with the spec's
/// renewal_crashed nodes going down and recovering mid-phase.
class ProactiveScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    proactive::ProactiveRunner runner(runner_config(spec));
    const AdversarySpec& adv = spec.adversary;
    ScenarioResult res;
    // The bootstrap always runs with plain DkgNodes (ProactiveRunner reads
    // every node's output); node corruption lands on the renewal phase,
    // which is where the proactive security argument (§5.2/§6.3) lives.
    bool dkg_ok = runner.run_dkg(spec.max_events);
    res.completed = runner.last_phase_completed();
    res.set_extra("dkg_ok", dkg_ok);
    if (!dkg_ok) return res;
    std::uint64_t dkg_msgs = runner.last_metrics().total_messages();
    std::uint64_t dkg_bytes = runner.last_metrics().total_bytes();
    res.set_extra("dkg_messages", dkg_msgs);
    res.set_extra("dkg_bytes", dkg_bytes);
    std::vector<sim::NodeId> renewal_crashed = spec.renewal_crashed;
    std::size_t removed = 0;
    if (adv.active()) {
      if (is_dealer_kind(adv.kind) || is_leader_kind(adv.kind) ||
          adv.kind == AdversaryKind::Collusion) {
        // Detected-misbehaviour response (§6.3): the corrupted members are
        // excluded from the renewal; the remaining honest quorum must still
        // refresh every share and preserve the key.
        for (sim::NodeId id : adversary_corrupted(spec)) {
          if (runner.remove_node(id)) ++removed;
        }
      } else if (adv.kind == AdversaryKind::ChurnStorm && renewal_crashed.empty()) {
        // Storm victims crash mid-renewal and recover via §5.3 help replay.
        // run_renewal downs the whole list simultaneously, so cap at f.
        crypto::Drbg storm(spec.derived_seed("adversary/churn-renewal"));
        std::set<sim::NodeId> victims;
        while (victims.size() < std::min(spec.f, spec.n > 0 ? spec.n - 1 : 0)) {
          victims.insert(2 + static_cast<sim::NodeId>(storm.uniform(spec.n - 1)));
        }
        renewal_crashed.assign(victims.begin(), victims.end());
      }
    }
    bool renewal_ok = runner.run_renewal(renewal_crashed, spec.max_events);
    res.completed = runner.last_phase_completed();
    res.set_extra("renewal_ok", renewal_ok);
    std::size_t active = spec.n - removed;
    if (!renewal_ok) {
      res.messages = dkg_msgs;
      res.bytes = dkg_bytes;
      if (adv.active()) set_adversary_verdicts(spec, res, 0, active, /*agreement=*/false);
      return res;
    }
    std::uint64_t renew_msgs = runner.last_metrics().total_messages();
    std::uint64_t renew_bytes = runner.last_metrics().total_bytes();
    res.set_extra("renewal_messages", renew_msgs);
    res.set_extra("renewal_bytes", renew_bytes);
    res.ok = runner.shares_consistent();
    res.messages = dkg_msgs + renew_msgs;
    res.bytes = dkg_bytes + renew_bytes;
    if (adv.active()) {
      // renewal_ok already implies every active node output the SAME public
      // key equal to the pre-renewal one; shares_consistent() adds the
      // per-share commitment checks.
      set_adversary_verdicts(spec, res, active, active, res.ok);
    }
    return res;
  }
};

/// Node addition (§6.2): DKG bootstrap, then one resharing round on a fresh
/// network with a joining node collecting t+1 verified subshares.
class NodeAddScenarioRunner : public ScenarioRunner {
 public:
  ScenarioResult run(const ScenarioSpec& spec) const override {
    ScenarioResult res;
    proactive::ProactiveRunner boot(runner_config(spec));
    bool dkg_ok = boot.run_dkg(spec.max_events);
    res.completed = boot.last_phase_completed();
    res.set_extra("dkg_ok", dkg_ok);
    if (!dkg_ok) return res;

    auto keyring =
        crypto::Keyring::generate(*spec.grp, spec.n, spec.derived_seed("node-add/keyring"));
    core::DkgParams params;
    params.vss.grp = spec.grp;
    params.vss.n = spec.n;
    params.vss.t = spec.t;
    params.vss.f = spec.f;
    params.vss.keyring = keyring;
    params.tau = spec.tau + 1;
    params.timeout_base = spec.timeout_base != 0 ? spec.timeout_base : 20'000;
    sim::Simulator sim(spec.n, make_delay_model(spec), spec.seed);
    sim::NodeId new_id = sim.add_node_slot();
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      sim.set_node(
          i, std::make_unique<groupmod::NodeAddNode>(params, i, boot.states()[i], new_id));
    }
    const AdversarySpec& adv = spec.adversary;
    std::set<sim::NodeId> replaced;
    std::shared_ptr<sim::Coalition> coalition;
    if (adv.active()) {
      std::set<sim::NodeId> corrupted = adversary_corrupted(spec);
      if (is_dealer_kind(adv.kind) || is_leader_kind(adv.kind)) {
        // Node 1 is both a resharing dealer and the view-1 leader. A mute
        // node covers either corruption; a lying ByzantineLeaderNode would
        // deal a *fresh* random secret, which is not a §6.2 resharing at
        // all, so fail-silence is the strongest well-formed strategy here.
        sim.set_node(1, std::make_unique<vss::SilentNode>());
        replaced = {1};
      } else if (adv.kind == AdversaryKind::Collusion) {
        coalition = std::make_shared<sim::Coalition>(corrupted);
        for (sim::NodeId id : corrupted) {
          sim.set_node(id, std::make_unique<sim::CollusionNode>(coalition, id));
        }
        replaced = corrupted;
      } else if (adv.kind == AdversaryKind::ChurnStorm) {
        churn_storm_plan(spec).apply(sim);
      }
    }
    auto joining = std::make_unique<groupmod::JoiningNode>(*spec.grp, spec.t, new_id, params.tau);
    groupmod::JoiningNode* j = joining.get();
    sim.set_node(new_id, std::move(joining));
    for (sim::NodeId i = 1; i <= spec.n; ++i) {
      sim.post_operator(i, std::make_shared<core::DkgStartOp>(params.tau, std::nullopt), 0);
    }
    res.completed = sim.run_until([&] { return j->has_share(); }, spec.max_events);
    res.ok = res.completed && j->has_share();
    res.messages = sim.metrics().total_messages();
    res.bytes = sim.metrics().total_bytes();
    res.completion_time = sim.now();
    res.set_extra("subshares", sim.metrics().by_prefix("gm.subshare").count);
    if (adv.active()) {
      // Safety (§6.2): the join must not change the sharing — the new share
      // verifies against the long-term vector V and V still commits the
      // bootstrap public key, whatever the corrupted members did.
      bool agreement = true;
      if (j->has_share()) {
        // reveal-ok: harness consistency audit of the joiner's new share
        // against the public group vector (receiver-local verification).
        agreement = j->group_vec().verify_share(new_id, j->share().reveal()) &&
                    j->group_vec().c0() == boot.public_key();
      }
      std::size_t done = j->has_share() ? 1 : 0;
      set_adversary_verdicts(spec, res, done, 1, agreement);
    }
    return res;
  }
};

/// Synchronous round-based baselines (Joint-Feldman [1], Gennaro et al.
/// [9]) on the broadcast-channel substrate the classical literature assumes.
class SyncBaselineScenarioRunner : public ScenarioRunner {
 public:
  explicit SyncBaselineScenarioRunner(bool gennaro) : gennaro_(gennaro) {}

  ScenarioResult run(const ScenarioSpec& spec) const override {
    baseline::SyncNetwork net(spec.n, spec.seed);
    if (gennaro_) {
      baseline::GennaroParams params{spec.grp, spec.n, spec.t};
      for (sim::NodeId i = 1; i <= spec.n; ++i) {
        net.set_node(i, std::make_unique<baseline::GennaroNode>(
                            params, i, net.rng().fork("gjkr/" + std::to_string(i))));
      }
    } else {
      baseline::JfParams params{spec.grp, spec.n, spec.t};
      for (sim::NodeId i = 1; i <= spec.n; ++i) {
        net.set_node(i, std::make_unique<baseline::JointFeldmanNode>(
                            params, i, net.rng().fork("jf/" + std::to_string(i))));
      }
    }
    std::size_t rounds = net.run(spec.max_rounds);
    ScenarioResult res;
    bool all_done = true;
    for (sim::NodeId i = 1; i <= spec.n; ++i) all_done = all_done && net.node(i).done();
    res.completed = all_done;
    res.ok = all_done;
    res.messages = net.metrics().total_messages();
    res.bytes = net.metrics().total_bytes();
    res.completion_time = rounds;
    res.set_extra("rounds", static_cast<std::uint64_t>(rounds));
    if (spec.adversary.active()) {
      // The synchronous broadcast substrate has no link adversary or node
      // replacement hooks; the row is marked so the adversary bench can
      // report the gap instead of silently running an honest baseline.
      res.set_extra("adversary", std::string(adversary_name(spec.adversary.kind)));
      res.set_extra("adversary_supported", false);
    }
    return res;
  }

 private:
  bool gennaro_;
};

}  // namespace

const ScenarioRunner& runner_for(Variant v) {
  static const VssScenarioRunner vss;
  static const AvssScenarioRunner avss;
  static const DkgScenarioRunner dkg;
  static const ProactiveScenarioRunner proactive;
  static const NodeAddScenarioRunner node_add;
  static const SyncBaselineScenarioRunner joint_feldman(false);
  static const SyncBaselineScenarioRunner gennaro(true);
  switch (v) {
    case Variant::HybridVss: return vss;
    case Variant::Avss: return avss;
    case Variant::Dkg: return dkg;
    case Variant::Proactive: return proactive;
    case Variant::NodeAdd: return node_add;
    case Variant::JointFeldman: return joint_feldman;
    case Variant::Gennaro: return gennaro;
  }
  return dkg;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  // The spec's verify-jobs cap rides a thread-local so every verification
  // site under this harness run (and nothing outside it) sees it — the
  // SweepDriver's workers each run whole scenarios, so scoping per-run is
  // exactly per-thread.
  ScopedVerifyJobs jobs(spec.verify_jobs);
  return runner_for(spec.variant).run(spec);
}

}  // namespace dkg::engine
