#include "engine/parallel_verify.hpp"

#include <algorithm>
#include <string>

#include "engine/verify_pool.hpp"

namespace dkg::engine {

namespace {

/// Contiguous [lo, hi) ranges splitting `total` items into at most `jobs`
/// near-equal chunks (first chunks one longer when it does not divide).
std::vector<std::pair<std::size_t, std::size_t>> split_ranges(std::size_t total, unsigned jobs) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::size_t parts = std::min<std::size_t>(jobs, total);
  if (parts == 0) return out;
  std::size_t base = total / parts, rem = total % parts, lo = 0;
  for (std::size_t w = 0; w < parts; ++w) {
    std::size_t hi = lo + base + (w < rem ? 1 : 0);
    out.emplace_back(lo, hi);
    lo = hi;
  }
  return out;
}

}  // namespace

bool parallel_verify_poly(const crypto::FeldmanMatrix& c, std::uint64_t i,
                          const crypto::Polynomial& a) {
  // ec256 verify_poly is a short chain of reads from the matrix's shared
  // share grid (one lock); a column split would only serialize on that lock,
  // so keep it on the event thread — the verdict is identical either way.
  if (c.group().backend() == crypto::GroupBackend::Ec256) return c.verify_poly(i, a);
  VerifyScope scope;
  if (!scope.parallel()) return c.verify_poly(i, a);
  auto ranges = split_ranges(c.degree() + 1, scope.jobs());
  std::vector<char> ok(ranges.size(), 1);
  for (std::size_t w = 0; w < ranges.size(); ++w) {
    auto [lo, hi] = ranges[w];
    scope.push([&c, i, &a, lo, hi, &ok, w] { ok[w] = c.verify_poly_range(i, a, lo, hi) ? 1 : 0; });
  }
  scope.join();
  return std::all_of(ok.begin(), ok.end(), [](char v) { return v != 0; });
}

bool parallel_verify_poly_col(const crypto::FeldmanMatrix& c, std::uint64_t i,
                              const crypto::Polynomial& b) {
  // See parallel_verify_poly: the ec256 path stays sequential by design.
  if (c.group().backend() == crypto::GroupBackend::Ec256) return c.verify_poly_col(i, b);
  VerifyScope scope;
  if (!scope.parallel()) return c.verify_poly_col(i, b);
  auto ranges = split_ranges(c.degree() + 1, scope.jobs());
  std::vector<char> ok(ranges.size(), 1);
  for (std::size_t w = 0; w < ranges.size(); ++w) {
    auto [lo, hi] = ranges[w];
    scope.push(
        [&c, i, &b, lo, hi, &ok, w] { ok[w] = c.verify_poly_col_range(i, b, lo, hi) ? 1 : 0; });
  }
  scope.join();
  return std::all_of(ok.begin(), ok.end(), [](char v) { return v != 0; });
}

bool parallel_verify_poly(const crypto::PedersenMatrix& c, std::uint64_t i,
                          const crypto::Polynomial& a, const crypto::Polynomial& a_prime) {
  VerifyScope scope;
  if (!scope.parallel()) return c.verify_poly(i, a, a_prime);
  auto ranges = split_ranges(c.degree() + 1, scope.jobs());
  std::vector<char> ok(ranges.size(), 1);
  for (std::size_t w = 0; w < ranges.size(); ++w) {
    auto [lo, hi] = ranges[w];
    scope.push([&c, i, &a, &a_prime, lo, hi, &ok, w] {
      ok[w] = c.verify_poly_range(i, a, a_prime, lo, hi) ? 1 : 0;
    });
  }
  scope.join();
  return std::all_of(ok.begin(), ok.end(), [](char v) { return v != 0; });
}

namespace {

crypto::FeldmanVector parallel_projection(const crypto::FeldmanMatrix& c, std::uint64_t idx,
                                          bool row) {
  VerifyScope scope;
  if (!scope.parallel()) return row ? c.row_commitment(idx) : c.col_commitment(idx);
  auto ranges = split_ranges(c.degree() + 1, scope.jobs());
  std::vector<std::vector<crypto::Element>> parts(ranges.size());
  for (std::size_t w = 0; w < ranges.size(); ++w) {
    auto [lo, hi] = ranges[w];
    scope.push([&c, idx, row, lo, hi, &parts, w] {
      parts[w] = row ? c.row_commitment_entries(idx, lo, hi) : c.col_commitment_entries(idx, lo, hi);
    });
  }
  scope.join();
  std::vector<crypto::Element> entries;
  entries.reserve(c.degree() + 1);
  for (auto& p : parts) {
    for (auto& e : p) entries.push_back(std::move(e));
  }
  return crypto::FeldmanVector(std::move(entries), c.order_q_entries());
}

}  // namespace

crypto::FeldmanVector parallel_row_commitment(const crypto::FeldmanMatrix& c, std::uint64_t i) {
  return parallel_projection(c, i, /*row=*/true);
}

crypto::FeldmanVector parallel_col_commitment(const crypto::FeldmanMatrix& c, std::uint64_t m) {
  return parallel_projection(c, m, /*row=*/false);
}

std::vector<crypto::Scalar> parallel_eval_row(const crypto::Polynomial& row, std::size_t n) {
  std::vector<crypto::Scalar> out(n);
  VerifyScope scope;
  auto ranges = split_ranges(n, scope.parallel() ? scope.jobs() : 1);
  for (auto [lo, hi] : ranges) {
    scope.push([&row, &out, lo, hi] {
      for (std::size_t k = lo; k < hi; ++k) {
        // reveal-ok: each evaluation row(j) is an echo/ready point addressed
        // to recipient P_j, who is entitled to it (Fig 1 echo/ready rounds);
        // the sequential call sites carried the same justification.
        out[k] = row.eval_at(k + 1).reveal();
      }
    });
  }
  scope.join();
  return out;
}

bool parallel_verify_share_batch(
    const crypto::FeldmanVector& vec,
    const std::vector<std::pair<std::uint64_t, crypto::Scalar>>& shares, crypto::Drbg& rng) {
  VerifyScope scope;
  if (!scope.parallel() || shares.size() < 2) return vec.verify_share_batch(shares, rng);
  // Fixed chunk size, not jobs-derived: the chunk layout (and so the RLC
  // coefficient streams) must not depend on --verify-jobs, or a 2-thread and
  // an 8-thread run could disagree on a malicious input.
  constexpr std::size_t kChunk = 16;
  std::size_t chunks = (shares.size() + kChunk - 1) / kChunk;
  std::vector<char> ok(chunks, 1);
  std::vector<crypto::Drbg> rngs;
  rngs.reserve(chunks);
  for (std::size_t w = 0; w < chunks; ++w) {
    rngs.push_back(rng.fork("verify-pool/vsb/" + std::to_string(w)));
  }
  for (std::size_t w = 0; w < chunks; ++w) {
    std::size_t lo = w * kChunk, hi = std::min(shares.size(), lo + kChunk);
    scope.push([&vec, &shares, lo, hi, &ok, &rngs, w] {
      ok[w] = vec.verify_share_batch_range(shares, lo, hi, rngs[w]) ? 1 : 0;
    });
  }
  scope.join();
  return std::all_of(ok.begin(), ok.end(), [](char v) { return v != 0; });
}

bool parallel_verify_many(const crypto::Keyring& ring,
                          const std::vector<crypto::Keyring::SignerRef>& refs,
                          const Bytes& payload, std::vector<std::uint32_t>* bad) {
  VerifyScope scope;
  if (!scope.parallel() || refs.size() < 8) return ring.verify_many(refs, payload, bad);
  auto ranges = split_ranges(refs.size(), scope.jobs());
  std::vector<char> ok(ranges.size(), 1);
  std::vector<std::vector<std::uint32_t>> bads(ranges.size());
  for (std::size_t w = 0; w < ranges.size(); ++w) {
    auto [lo, hi] = ranges[w];
    scope.push([&ring, &refs, &payload, lo, hi, &ok, &bads, w] {
      std::vector<crypto::Keyring::SignerRef> chunk(
          refs.begin() + static_cast<std::ptrdiff_t>(lo),
          refs.begin() + static_cast<std::ptrdiff_t>(hi));
      ok[w] = ring.verify_many(chunk, payload, &bads[w]) ? 1 : 0;
    });
  }
  scope.join();
  bool all = std::all_of(ok.begin(), ok.end(), [](char v) { return v != 0; });
  if (bad != nullptr) {
    // Rebuild the sequential emission order: out-of-range refs in scan order
    // first, then failed signers in check order. A chunk's bad list is its
    // own (oor ++ failed); the oor prefix length is recomputable from the
    // refs themselves, so the two sequences concatenate exactly.
    auto is_oor = [&ring](const crypto::Keyring::SignerRef& r) {
      return r.signer == 0 || r.signer > ring.size() || r.sig == nullptr;
    };
    for (std::size_t w = 0; w < ranges.size(); ++w) {
      auto [lo, hi] = ranges[w];
      std::size_t oor = 0;
      for (std::size_t k = lo; k < hi; ++k) {
        if (is_oor(refs[k])) ++oor;
      }
      for (std::size_t k = 0; k < oor; ++k) bad->push_back(bads[w][k]);
    }
    for (std::size_t w = 0; w < ranges.size(); ++w) {
      auto [lo, hi] = ranges[w];
      std::size_t oor = 0;
      for (std::size_t k = lo; k < hi; ++k) {
        if (is_oor(refs[k])) ++oor;
      }
      for (std::size_t k = oor; k < bads[w].size(); ++k) bad->push_back(bads[w][k]);
    }
  }
  return all;
}

}  // namespace dkg::engine
