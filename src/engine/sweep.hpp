// SweepDriver: expands a parameter grid into ScenarioSpecs and executes
// them on a std::thread pool. Each spec is fully self-contained (its own
// simulator, DRBGs and keyring derived from the spec's seed), so scenarios
// are embarrassingly parallel; results are merged back in spec order, which
// makes a multi-job run's simulated metrics byte-identical to a sequential
// one — only the measured cpu_ms differs.
//
// Shared-state audit backing the "any thread may run any spec" claim:
//  * crypto::Group::tiny256()/small512()/mod1024()/big2048() are function-
//    local statics — C++11 magic-static init is thread-safe and the objects
//    are const afterwards;
//  * every Drbg, Keyring, Simulator and Metrics instance is constructed
//    per-scenario from the spec; nothing in src/sim keeps global mutable
//    state (GMP mpz values are per-object);
//  * the one global cache in src/crypto — crypto::FixedBaseTable's
//    per-(group, base) comb tables — is built behind a mutex and immutable
//    afterwards (raced by ctest -R Multiexp under the tsan preset).
#pragma once

#include <vector>

#include "engine/runner.hpp"

namespace dkg::engine {

class SweepDriver {
 public:
  /// Appends one scenario to the sweep (executed in insertion order).
  void add(ScenarioSpec spec) { specs_.push_back(std::move(spec)); }

  /// Declarative grid expansion: one spec per value of an axis, e.g.
  ///   driver.add_axis({4, 7, 10}, [&](std::size_t n) { ... return spec; });
  template <typename Axis, typename MakeSpec>
  void add_axis(const Axis& values, MakeSpec&& make_spec) {
    for (const auto& v : values) add(make_spec(v));
  }

  const std::vector<ScenarioSpec>& specs() const { return specs_; }
  /// Mutable access for post-expansion rewrites (the bench `--adversary`
  /// axis stamps an AdversarySpec onto every expanded spec).
  std::vector<ScenarioSpec>& mutable_specs() { return specs_; }
  std::size_t size() const { return specs_.size(); }

  /// Executes every spec and returns results in spec order. `jobs` threads
  /// run concurrently (0 = hardware_concurrency); each result's cpu_ms is
  /// the steady_clock wall time of that scenario on its worker.
  std::vector<ScenarioResult> run(unsigned jobs = 0) const;

  static unsigned default_jobs();

 private:
  std::vector<ScenarioSpec> specs_;
};

}  // namespace dkg::engine
