#include "engine/scenario.hpp"

namespace dkg::engine {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::HybridVss: return "hybridvss";
    case Variant::Avss: return "avss";
    case Variant::Dkg: return "dkg";
    case Variant::Proactive: return "proactive";
    case Variant::NodeAdd: return "node-add";
    case Variant::JointFeldman: return "joint-feldman";
    case Variant::Gennaro: return "gennaro";
  }
  return "unknown";
}

namespace {

// FNV-1a, the 64-bit variant — tiny, stable across platforms, and good
// enough to spread grid coordinates into distinct seeds.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void mix_u64(std::uint64_t& h, std::uint64_t v) {
  // Fixed-width little-endian so the hash is independent of host layout.
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  mix_bytes(h, b, sizeof(b));
}

void mix_str(std::uint64_t& h, std::string_view s) {
  mix_u64(h, s.size());
  mix_bytes(h, s.data(), s.size());
}

}  // namespace

std::uint64_t ScenarioSpec::derived_seed(std::string_view domain) const {
  std::uint64_t h = kFnvOffset;
  mix_str(h, "hybriddkg/engine/seed/v1");
  mix_u64(h, seed);
  mix_u64(h, static_cast<std::uint64_t>(variant));
  mix_str(h, grp->name());
  mix_u64(h, n);
  mix_u64(h, t);
  mix_u64(h, f);
  mix_u64(h, static_cast<std::uint64_t>(mode));
  mix_str(h, label);
  // Adversarial parameters join the identity only when a strategy is
  // active, so every pre-adversary spec keeps its historical seed (and all
  // committed baselines their transcripts).
  if (adversary.active()) {
    mix_str(h, "adversary");
    mix_u64(h, static_cast<std::uint64_t>(adversary.kind));
    mix_u64(h, adversary.corrupted.size());
    for (sim::NodeId id : adversary.corrupted) mix_u64(h, id);
    mix_u64(h, adversary.classes);
    mix_u64(h, adversary.victims);
    mix_u64(h, adversary.recipients);
    mix_u64(h, adversary.penalty);
    mix_u64(h, adversary.split_at);
    mix_u64(h, adversary.heal_at);
    mix_u64(h, adversary.storm_crashes);
    mix_u64(h, adversary.storm_horizon);
  }
  mix_str(h, domain);
  return h;
}

const MetricValue* ScenarioResult::extra(std::string_view key) const {
  for (const auto& [k, v] : extras) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t ScenarioResult::extra_u64(std::string_view key, std::uint64_t fallback) const {
  const MetricValue* v = extra(key);
  if (v == nullptr) return fallback;
  if (const auto* u = std::get_if<std::uint64_t>(v)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(v)) return static_cast<std::uint64_t>(*i);
  return fallback;
}

}  // namespace dkg::engine
