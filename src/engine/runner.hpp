// ScenarioRunner: the interface through which the engine drives a protocol
// harness. Each existing harness (core::DkgRunner, the HybridVSS/AVSS sims,
// proactive::ProactiveRunner, groupmod node addition, baseline::SyncNetwork)
// is wrapped by one stateless implementation in runners.cpp; `runner_for`
// dispatches on ScenarioSpec::variant so one sweep can mix protocols.
//
// Thread-safety contract: run() is const and builds every simulator, DRBG
// and keyring locally from the spec — implementations must not touch any
// shared mutable state, so distinct scenarios may run on distinct threads.
#pragma once

#include "engine/scenario.hpp"

namespace dkg::engine {

class ScenarioRunner {
 public:
  virtual ~ScenarioRunner() = default;
  virtual ScenarioResult run(const ScenarioSpec& spec) const = 0;
};

/// Stateless singleton runner for a protocol variant.
const ScenarioRunner& runner_for(Variant v);

/// Executes one scenario on the calling thread (dispatch + run; does not
/// fill in cpu_ms — the SweepDriver times its workers).
ScenarioResult run_scenario(const ScenarioSpec& spec);

}  // namespace dkg::engine
