// VerifyPool: intra-scenario parallel verification (the post-PR-7 E4 lever).
//
// The SweepDriver parallelizes ACROSS scenarios, but one big scenario (E4
// full-commitment n=64) is a single-threaded event loop whose CPU is almost
// entirely commitment/share/signature verification — pure, commutative
// checks with no transcript effects. This pool fans exactly those checks out
// across worker threads while the event loop stays sequential:
//
//  * VerifyPool — one process-wide worker set, sized by `configure(jobs)`
//    (the bench `--verify-jobs N` knob; `cooperative_jobs()` divides the
//    hardware by the SweepDriver's `--jobs` so sweep x pool stays bounded).
//  * VerifyScope — a fork-join region: handlers push independent pure
//    closures and join before acting on any verdict. Workers steal pushed
//    tasks; join() claims whatever is still queued and runs it on the owner
//    thread, so a scope can never deadlock even with zero free workers.
//    Scopes opened from inside a pool task degrade to immediate inline
//    execution (no nested fan-out, no lock-ordering hazards).
//  * set_verify_pool(false) — the A/B pin (the set_shared_fanout pattern):
//    transcripts, message/byte counts, Metrics and JSON must be
//    bit-identical pool on/off, modulo cpu_ms. tests/test_verify_pool.cpp
//    holds that line; the tsan CI leg races the pool against every engine
//    cache (Montgomery images, combs, decode, sig cache, point memo).
//
// Determinism contract for callers: tasks must be pure with respect to the
// simulation (no ctx.send, no Metrics, no shared mutable protocol state);
// all observable effects happen on the event thread after join(), merged in
// spec order. The simulator enforces the send half of this by throwing from
// any send/timer call made under common::in_worker_task().
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/task_guard.hpp"

namespace dkg::engine {

/// A/B knob: when off, every VerifyScope runs its tasks inline at push time
/// regardless of pool configuration. Default on (a pool configured with
/// jobs <= 1 is equally inert, which is the usual state).
bool verify_pool_enabled();
void set_verify_pool(bool on);

/// Per-thread verify-jobs override (ScenarioSpec::verify_jobs): 0 inherits
/// the process-wide configure() value. The effective parallelism of a scope
/// is min(override-or-configured, configured) — a scenario can restrict
/// itself below the pool size but cannot conjure workers that do not exist.
unsigned current_verify_jobs();

class ScopedVerifyJobs {
 public:
  explicit ScopedVerifyJobs(unsigned jobs);
  ~ScopedVerifyJobs();
  ScopedVerifyJobs(const ScopedVerifyJobs&) = delete;
  ScopedVerifyJobs& operator=(const ScopedVerifyJobs&) = delete;

 private:
  unsigned prev_;
};

class VerifyPool {
 public:
  static VerifyPool& instance();

  /// Sizes the pool to `jobs` total verify threads (the caller counts as
  /// one, so jobs-1 workers are spawned). jobs <= 1 stops all workers.
  /// Reconfiguring joins the old workers first; do not call with scopes in
  /// flight (benches configure once, up front).
  void configure(unsigned jobs);
  unsigned configured_jobs() const;

  /// Cooperative sizing against the SweepDriver: with `sweep_jobs` scenario
  /// threads each opening scopes, give each scenario its fair slice of the
  /// hardware so sweep x pool never oversubscribes by design.
  static unsigned cooperative_jobs(unsigned sweep_jobs);

  ~VerifyPool();

 private:
  friend class VerifyScope;
  VerifyPool() = default;
  struct Impl;
  static Impl& impl();
};

/// True when a scope opened right now on this thread would actually fan out
/// (knob on, workers alive, effective jobs > 1, not already inside a task).
/// Handlers use this to pick between the sequential code path and the
/// deferred/parallel one.
bool verify_parallel_active();

/// One fork-join region. Tasks pushed after construction run on pool
/// workers (or inline, see header comment); join() blocks until every task
/// finished and rethrows the first task exception. The destructor joins.
class VerifyScope {
 public:
  VerifyScope();
  ~VerifyScope();
  VerifyScope(const VerifyScope&) = delete;
  VerifyScope& operator=(const VerifyScope&) = delete;

  /// Whether this scope dispatches to workers (fixed at construction).
  bool parallel() const { return parallel_; }
  /// Effective job count for chunking decisions: 1 when inline.
  unsigned jobs() const { return jobs_; }

  void push(std::function<void()> fn);
  void join();

 private:
  friend class VerifyPool;
  struct State;
  std::shared_ptr<State> state_;  // null when inline
  bool parallel_ = false;
  unsigned jobs_ = 1;
  bool joined_ = false;
};

}  // namespace dkg::engine
