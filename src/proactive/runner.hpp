// Multi-phase proactive harness: phase 1 runs the DKG, phases 2..k run share
// renewals, with optional crash/reboot (share recovery, §5.3) along the way.
// Used by tests, benches and the proactive example.
#pragma once

#include <set>
#include <vector>

#include "dkg/runner.hpp"
#include "proactive/phase_clock.hpp"
#include "proactive/renewal.hpp"

namespace dkg::proactive {

class ProactiveRunner {
 public:
  explicit ProactiveRunner(core::RunnerConfig cfg);

  /// Runs the initial DKG (phase tau = cfg.tau). Returns false on failure.
  bool run_dkg(std::uint64_t max_events = 50'000'000);

  /// Runs one share-renewal phase on a fresh simulated network seeded from
  /// the previous phase's states. Optionally crashes `crashed` nodes during
  /// the phase (they recover and must catch up via help replay).
  bool run_renewal(const std::vector<sim::NodeId>& crashed = {},
                   std::uint64_t max_events = 50'000'000);

  /// True if the most recent phase's simulation finished within its event
  /// budget — distinguishes budget exhaustion from a protocol-level failure
  /// (inconsistent outputs) when run_dkg/run_renewal return false.
  bool last_phase_completed() const { return last_phase_completed_; }

  /// Node removal (§6.3): "to remove a node from the group involves simply
  /// not including it in the next share renewal protocol". The removed
  /// node takes no part in the next renewal; its stale share stops
  /// verifying against the new commitment. Refused (returns false) if the
  /// remaining active count would drop below the n - t - f quorum.
  bool remove_node(sim::NodeId id);
  const std::set<sim::NodeId>& removed_nodes() const { return removed_; }

  /// Schedules a threshold/crash-limit modification (§6.4): the NEXT
  /// renewal reshares with degree `new_t` and completion quorum n - new_t -
  /// new_f, agreeing on max(old_t, new_t) + 1 dealers so the old secret
  /// interpolates exactly. Returns false (and changes nothing) if the new
  /// parameters break n >= 3t + 2f + 1.
  bool set_thresholds(std::size_t new_t, std::size_t new_f);

  std::size_t t() const { return cfg_.t; }
  std::size_t f() const { return cfg_.f; }

  std::uint32_t phase() const { return tau_; }
  const crypto::Element& public_key() const { return public_key_; }
  const std::vector<ShareState>& states() const { return states_; }  // index 0 unused

  /// Reconstructs the secret from the current phase's shares (test-only).
  crypto::Scalar reconstruct() const;
  /// Verifies every current share against the current commitment vector.
  bool shares_consistent() const;

  /// Metrics of the most recent phase run.
  const sim::Metrics& last_metrics() const { return last_metrics_; }

 private:
  core::RunnerConfig cfg_;
  std::uint32_t tau_;
  bool last_phase_completed_ = false;
  std::size_t pending_q_size_ = 0;
  std::set<sim::NodeId> removed_;
  crypto::Element public_key_;
  std::vector<ShareState> states_;
  sim::Metrics last_metrics_;
};

}  // namespace dkg::proactive
