#include "proactive/runner.hpp"

#include <stdexcept>

#include "crypto/lagrange.hpp"
#include "engine/parallel_verify.hpp"

namespace dkg::proactive {

using crypto::Scalar;

ProactiveRunner::ProactiveRunner(core::RunnerConfig cfg)
    : cfg_(cfg), tau_(cfg.tau), states_(cfg.n + 1, ShareState{
          crypto::SecretScalar{},
          crypto::FeldmanVector({crypto::Element::identity(*cfg.grp)})}) {}

bool ProactiveRunner::run_dkg(std::uint64_t max_events) {
  core::DkgRunner runner(cfg_);
  runner.start_all();
  last_phase_completed_ = runner.run_to_completion(0, max_events);
  if (!last_phase_completed_) return false;
  if (!runner.outputs_consistent()) return false;
  for (sim::NodeId i = 1; i <= cfg_.n; ++i) {
    const core::DkgOutput& out = runner.dkg_node(i).output();
    states_[i] = ShareState{out.share, *out.share_vec};
    public_key_ = out.public_key;
  }
  last_metrics_ = runner.simulator().metrics();
  return true;
}

bool ProactiveRunner::set_thresholds(std::size_t new_t, std::size_t new_f) {
  if (cfg_.n < 3 * new_t + 2 * new_f + 1) return false;
  pending_q_size_ = std::max(cfg_.t, new_t) + 1;
  cfg_.t = new_t;
  cfg_.f = new_f;
  return true;
}

bool ProactiveRunner::remove_node(sim::NodeId id) {
  if (id == 0 || id > cfg_.n || removed_.count(id) != 0) return false;
  // An honest node refuses a removal invalidating liveness: the remaining
  // active members must still reach the n - t - f completion quorum.
  if (cfg_.n - (removed_.size() + 1) < cfg_.n - cfg_.t - cfg_.f) return false;
  removed_.insert(id);
  return true;
}

bool ProactiveRunner::run_renewal(const std::vector<sim::NodeId>& crashed,
                                  std::uint64_t max_events) {
  tau_ += 1;
  core::RunnerConfig cfg = cfg_;
  cfg.tau = tau_;
  cfg.seed = cfg_.seed + tau_;

  // Build a bespoke simulator (DkgRunner would install plain DkgNodes).
  auto keyring = crypto::Keyring::generate(*cfg.grp, cfg.n, cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  core::DkgParams params;
  params.vss.grp = cfg.grp;
  params.vss.n = cfg.n;
  params.vss.t = cfg.t;
  params.vss.f = cfg.f;
  params.vss.d_kappa = cfg.d_kappa;
  params.vss.mode = cfg.mode;
  params.vss.keyring = keyring;
  params.tau = tau_;
  params.timeout_base = cfg.timeout_base != 0 ? cfg.timeout_base : (cfg.delay_hi + 1) * 60;
  if (pending_q_size_ != 0) {
    params.q_size_override = pending_q_size_;
    pending_q_size_ = 0;
  }

  sim::Simulator sim(cfg.n,
                     cfg.delay_factory
                         ? cfg.delay_factory()
                         : std::make_unique<sim::UniformDelay>(cfg.delay_lo, cfg.delay_hi),
                     cfg.seed);
  // Removed nodes (§6.3) are simply not included in the renewal: they get
  // a mute placeholder, receive no clock tick, and end the phase with only
  // their now-useless old share.
  struct MuteNode : sim::Node {
    void on_message(sim::Context&, sim::NodeId, const sim::MessagePtr&) override {}
  };
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    if (removed_.count(i) != 0) {
      sim.set_node(i, std::make_unique<MuteNode>());
    } else {
      sim.set_node(i, std::make_unique<RenewalNode>(params, i, states_[i]));
    }
  }
  PhaseClock clock(/*phase_interval=*/0, /*max_skew=*/cfg.delay_hi);
  clock.schedule_phase(sim, tau_, cfg.n, /*base_at=*/0);

  // Crash/reboot plan: crashed nodes go down mid-phase and recover later;
  // share recovery (§5.3) must let them finish via help replay.
  sim::Time outage_start = (cfg.delay_hi + 1) * 4;
  sim::Time outage_end = outage_start + (cfg.delay_hi + 1) * 30;
  for (sim::NodeId id : crashed) {
    sim.schedule_crash(id, outage_start);
    sim.schedule_recover(id, outage_end);
  }

  auto all_done = [&] {
    for (sim::NodeId i = 1; i <= cfg.n; ++i) {
      if (removed_.count(i) != 0) continue;
      if (!dynamic_cast<RenewalNode&>(sim.node(i)).has_output()) return false;
    }
    return true;
  };
  last_phase_completed_ = sim.run_until(all_done, max_events);
  if (!last_phase_completed_) return false;

  std::vector<ShareState> next(states_.size(), states_[0]);
  crypto::Element pk;
  bool first = true;
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    if (removed_.count(i) != 0) {
      next[i] = states_[i];  // keeps only its stale old share
      continue;
    }
    const core::DkgOutput& out = dynamic_cast<RenewalNode&>(sim.node(i)).output();
    next[i] = ShareState{out.share, *out.share_vec};
    if (first) {
      pk = out.public_key;
      first = false;
    } else if (!(pk == out.public_key)) {
      return false;
    }
  }
  if (!(pk == public_key_)) return false;  // renewal must preserve the key
  states_ = std::move(next);
  last_metrics_ = sim.metrics();
  return true;
}

Scalar ProactiveRunner::reconstruct() const {
  std::vector<std::pair<std::uint64_t, Scalar>> pts;
  for (sim::NodeId i = 1; i <= cfg_.n && pts.size() < cfg_.t + 1; ++i) {
    if (removed_.count(i) != 0) continue;
    // reveal-ok: harness-level reconstruction of the master secret from t+1
    // shares (the whole point of reconstruct()); the secret goes public here.
    pts.emplace_back(i, states_[i].share.reveal());
  }
  if (pts.size() < cfg_.t + 1) throw std::logic_error("ProactiveRunner: not enough members");
  return crypto::interpolate_at(*cfg_.grp, pts, 0);
}

bool ProactiveRunner::shares_consistent() const {
  // Every active node holds the SAME commitment vector after a phase, so
  // the n checks fold into one randomized batch against states_[1]'s copy
  // (the vectors are compared entrywise first to keep the old semantics).
  std::vector<std::pair<std::uint64_t, Scalar>> shares;
  const crypto::FeldmanVector* vec = nullptr;
  for (sim::NodeId i = 1; i <= cfg_.n; ++i) {
    if (removed_.count(i) != 0) continue;
    if (vec == nullptr) {
      vec = &states_[i].commitment;
    } else if (!(states_[i].commitment == *vec)) {
      // Diverging commitments: fall back to the per-node check, which is
      // what the old loop effectively did.
      for (sim::NodeId j = 1; j <= cfg_.n; ++j) {
        if (removed_.count(j) != 0) continue;
        // reveal-ok: harness consistency audit re-derives the public
        // commitment of each node's share (receiver-local verification).
        if (!states_[j].commitment.verify_share(j, states_[j].share.reveal())) return false;
      }
      return true;
    }
    // reveal-ok: harness consistency audit (batch verification against V).
    shares.emplace_back(i, states_[i].share.reveal());
  }
  if (vec == nullptr) return true;
  crypto::Drbg rng(cfg_.seed ^ 0x70726f61637469ULL);  // "proacti"
  if (engine::parallel_verify_share_batch(*vec, shares, rng)) return true;
  for (const auto& [i, share] : shares) {
    if (!vec->verify_share(i, share)) return false;
  }
  return false;
}

}  // namespace dkg::proactive
