// Local phase clocks (paper §5.1): each node receives clock ticks at
// pre-defined intervals; ticks are local (skewed), not a global clock. The
// PhaseClock schedules PhaseTickOp operator messages into the simulator with
// bounded per-node skew.
#pragma once

#include "crypto/drbg.hpp"
#include "sim/simulator.hpp"

namespace dkg::proactive {

class PhaseClock {
 public:
  /// Ticks for phase `tau` land at `base_at + skew`, skew uniform in
  /// [0, max_skew] per node.
  PhaseClock(sim::Time phase_interval, sim::Time max_skew)
      : interval_(phase_interval), max_skew_(max_skew) {}

  /// Schedules the tick for phase `tau` on every node in [1, n].
  void schedule_phase(sim::Simulator& sim, std::uint32_t tau, std::size_t n,
                      sim::Time base_at);

  sim::Time interval() const { return interval_; }

 private:
  sim::Time interval_;
  sim::Time max_skew_;
};

}  // namespace dkg::proactive
