#include "proactive/phase_clock.hpp"

#include "proactive/renewal.hpp"

namespace dkg::proactive {

void PhaseClock::schedule_phase(sim::Simulator& sim, std::uint32_t tau, std::size_t n,
                                sim::Time base_at) {
  crypto::Drbg skew = sim.rng().fork("phase-clock/" + std::to_string(tau));
  for (sim::NodeId i = 1; i <= n; ++i) {
    sim::Time at = base_at + (max_skew_ > 0 ? skew.uniform(max_skew_ + 1) : 0);
    sim.post_operator(i, std::make_shared<PhaseTickOp>(tau), at);
  }
}

}  // namespace dkg::proactive
