#include "proactive/renewal.hpp"

#include "crypto/lagrange.hpp"
#include "crypto/multiexp.hpp"

namespace dkg::proactive {

using crypto::Element;
using crypto::FeldmanVector;
using crypto::Scalar;

RenewalNode::RenewalNode(core::DkgParams params, sim::NodeId self, ShareState old_state)
    : core::DkgNode([&] {
        params.vss.erase_row_on_store = true;  // §5.2 erasure rule
        return params;
      }(), self),
      old_state_(std::move(old_state)),
      old_public_key_(old_state_->commitment.c0()) {}

void RenewalNode::on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) {
  if (from == sim::kOperator) {
    if (const auto* tick = dynamic_cast<const PhaseTickOp*>(msg.get());
        tick && tick->tau == params_.tau) {
      if (!local_tick_) {
        local_tick_ = true;
        // Announce the tick and count it for ourselves.
        ctx.multicast(peers(), std::make_shared<ClockTickMsg>(params_.tau));
      }
      return;
    }
    DkgNode::on_message(ctx, from, msg);
    return;
  }
  if (const auto* tick = dynamic_cast<const ClockTickMsg*>(msg.get())) {
    if (tick->tau == params_.tau) on_tick(ctx, from);
    return;
  }
  DkgNode::on_message(ctx, from, msg);
}

void RenewalNode::on_tick(sim::Context& ctx, sim::NodeId from) {
  tick_senders_.insert(from);
  // §5.1: proceed only after t+1 nodes (including self via its broadcast)
  // have started the phase.
  if (!resharing_started_ && local_tick_ && tick_senders_.size() >= params_.t() + 1) {
    begin_resharing(ctx);
  }
}

void RenewalNode::begin_resharing(sim::Context& ctx) {
  resharing_started_ = true;
  init_vss(ctx);
  // Receivers accept only dealings of each dealer's certified old share:
  // C_00 must equal g^{s_d} = V_old(d).
  for (sim::NodeId d = 1; d <= params_.n(); ++d) {
    vss_instance(d).set_expected_c00(old_state_->commitment.eval_commit(d));
  }
  crypto::BiPolynomial f =
      crypto::BiPolynomial::random(old_state_->share, params_.t(), ctx.rng());
  // Erase the old share before any resharing message leaves this node — the
  // paper trades liveness for safety here (no phase overlap).
  old_state_.reset();
  start_with_polynomial(ctx, f);
}

core::DkgOutput RenewalNode::combine(sim::Context&, const core::NodeSet& q) {
  const crypto::Group& grp = *params_.vss.grp;
  std::vector<std::uint64_t> xs(q.begin(), q.end());
  crypto::SecretScalar share = crypto::SecretScalar::zero(grp);
  std::vector<Scalar> lambdas;
  lambdas.reserve(q.size());
  for (std::size_t k = 0; k < q.size(); ++k) {
    lambdas.push_back(crypto::lagrange_coeff(grp, xs, k, 0));
    share += vss_output(q[k]).share * lambdas.back();
  }
  // V_new[l] = prod_k C_k[l,0]^{lambda_k}: one multi-exp per coefficient.
  std::vector<Element> vec;
  vec.reserve(params_.t() + 1);
  std::vector<const Element*> bases(q.size());
  for (std::size_t l = 0; l <= params_.t(); ++l) {
    for (std::size_t k = 0; k < q.size(); ++k) {
      bases[k] = &vss_output(q[k]).commitment->entry(l, 0);
    }
    vec.push_back(crypto::multiexp(grp, bases, lambdas));
  }
  core::DkgOutput out;
  out.share = std::move(share);
  out.share_vec = FeldmanVector(std::move(vec));
  out.public_key = out.share_vec->c0();
  return out;
}

}  // namespace dkg::proactive
