// Share renewal (paper §5.2): at each phase boundary every node reshares its
// previous-phase share through extended HybridVSS, the leader-based
// agreement picks t+1 completed resharings Q, and each node's new share is
// the Lagrange combination at index 0:
//     s'_i = sum_{d in Q} lambda_d^{Q,0} s'_{i,d},
//     V'_l = prod_{d in Q} ((C_d)_{l,0})^{lambda_d^{Q,0}}.
// New shares interpolate to the same secret but are independent of old ones,
// so a mobile adversary's t old shares become useless.
//
// Phase synchronization (§5.1): a node starts resharing only after observing
// t+1 clock ticks for the phase (its own included); old-phase material is
// erased when resharing starts (no phase overlap — safety over liveness).
#pragma once

#include "dkg/dkg_node.hpp"

namespace dkg::proactive {

/// A node's durable sharing state between phases.
struct ShareState {
  crypto::SecretScalar share;
  crypto::FeldmanVector commitment;  // V: g^{s_i} = prod V_l^{i^l}
};

/// Operator message: local clock tick for phase `tau` (§5.1).
struct PhaseTickOp : core::DkgMessage {
  using DkgMessage::DkgMessage;
  std::string_view type() const override { return "proactive.in.tick"; }
  void serialize(Writer& w) const override { w.u32(tau); }
};

/// Broadcast announcement of a local clock tick.
struct ClockTickMsg : core::DkgMessage {
  using DkgMessage::DkgMessage;
  std::string_view type() const override { return "proactive.tick"; }
  void serialize(Writer& w) const override { w.u32(tau); }
};

class RenewalNode : public core::DkgNode {
 public:
  /// `params.tau` identifies the new phase; `old_state` is the share held
  /// from phase tau-1 (the group verification vector must be common).
  RenewalNode(core::DkgParams params, sim::NodeId self, ShareState old_state);

  void on_message(sim::Context& ctx, sim::NodeId from, const sim::MessagePtr& msg) override;

  bool resharing_started() const { return resharing_started_; }

 protected:
  core::DkgOutput combine(sim::Context& ctx, const core::NodeSet& q) override;

 private:
  void on_tick(sim::Context& ctx, sim::NodeId from);
  void begin_resharing(sim::Context& ctx);

  std::optional<ShareState> old_state_;  // erased when resharing begins (§5.2)
  crypto::Element old_public_key_;
  std::set<sim::NodeId> tick_senders_;
  bool local_tick_ = false;
  bool resharing_started_ = false;
};

}  // namespace dkg::proactive
