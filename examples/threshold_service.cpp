// Threshold cryptography service: the paper's §1 motivating applications on
// one DKG'd key — dealerless threshold ElGamal decryption and threshold
// Schnorr signatures, with a Byzantine shareholder whose forged
// contributions are caught by the DLEQ / commitment checks.
//
//   $ ./example_threshold_service
#include <cstdio>

#include "app/threshold_elgamal.hpp"
#include "app/threshold_schnorr.hpp"
#include "dkg/runner.hpp"

using namespace dkg;

namespace {

core::RunnerConfig service_config(std::uint32_t tau, std::uint64_t seed) {
  core::RunnerConfig cfg;
  cfg.grp = &crypto::Group::small512();
  cfg.n = 7;
  cfg.t = 2;
  cfg.f = 0;
  cfg.tau = tau;
  cfg.seed = seed;
  return cfg;
}

struct KeyMaterial {
  crypto::FeldmanVector vec;
  std::vector<crypto::SecretScalar> shares;  // index 0 unused
};

KeyMaterial run_dkg(std::uint32_t tau, std::uint64_t seed) {
  core::DkgRunner runner(service_config(tau, seed));
  runner.start_all();
  if (!runner.run_to_completion() || !runner.outputs_consistent()) {
    std::fprintf(stderr, "DKG failed\n");
    std::exit(1);
  }
  KeyMaterial km{*runner.dkg_node(1).output().share_vec, {crypto::SecretScalar{}}};
  for (sim::NodeId i = 1; i <= 7; ++i) km.shares.push_back(runner.dkg_node(i).output().share);
  return km;
}

}  // namespace

int main() {
  std::printf("=== Distributed key generation (no dealer ever exists) ===\n");
  KeyMaterial key = run_dkg(1, 1001);
  std::printf("service public key: %s...\n\n",
              to_hex(key.vec.c0().to_bytes()).substr(0, 32).c_str());

  // ---------------- Threshold ElGamal decryption -------------------------
  std::printf("=== Threshold ElGamal decryption (t+1 = 3 of 7) ===\n");
  const crypto::Group& grp = key.vec.group();
  crypto::Drbg client_rng(42);
  crypto::Element message = crypto::Element::exp_g(crypto::Scalar::from_u64(grp, 0xCAFEBABE));
  app::ElGamalCiphertext ct = app::elgamal_encrypt(key.vec.c0(), message, client_rng);
  std::printf("client encrypted a message under the service key\n");

  std::vector<app::PartialDecryption> partials;
  // Node 3 is Byzantine: it uses node 5's index with its own share.
  partials.push_back(app::partial_decrypt(ct, 5, key.shares[3]));
  for (std::uint64_t i : {1ull, 2ull, 6ull}) {
    partials.push_back(app::partial_decrypt(ct, i, key.shares[i]));
  }
  for (const auto& pd : partials) {
    std::printf("  partial from P%llu: %s\n", static_cast<unsigned long long>(pd.index),
                app::verify_partial(ct, key.vec, pd) ? "valid" : "REJECTED (forged)");
  }
  auto decrypted = app::combine_decryption(ct, key.vec, 2, partials);
  std::printf("combined decryption: %s\n\n",
              decrypted && *decrypted == message ? "message recovered" : "FAILED");

  // ---------------- Threshold Schnorr signature --------------------------
  std::printf("=== Threshold Schnorr signature ===\n");
  std::printf("running a second DKG for the one-time nonce...\n");
  KeyMaterial nonce = run_dkg(2, 2002);
  Bytes msg = bytes_of("pay 10 coins to alice");
  app::SigningSession session{nonce.vec.c0(), nonce.vec, key.vec, msg};

  std::vector<app::PartialSignature> sigs;
  for (std::uint64_t i : {2ull, 4ull, 7ull}) {
    sigs.push_back(app::partial_sign(session, i, key.shares[i], nonce.shares[i]));
    std::printf("  partial signature from P%llu: %s\n", static_cast<unsigned long long>(i),
                app::verify_partial(session, sigs.back()) ? "valid" : "invalid");
  }
  auto sig = app::combine_signature(session, 2, sigs);
  if (!sig) {
    std::printf("combination failed\n");
    return 1;
  }
  bool ok = crypto::schnorr_verify(key.vec.c0(), msg, *sig);
  std::printf("combined signature verifies under plain Schnorr: %s\n", ok ? "OK" : "FAIL");
  std::printf("(no signer ever held the key or the nonce)\n");
  return ok ? 0 : 1;
}
