// Distributed randomness beacon (the paper's distributed coin-tossing /
// distributed PRF application, §1): after one DKG, every round r yields a
// unique, unpredictable, publicly-verifiable 32-byte value — no matter
// which t+1 nodes participate, and despite forged contributions.
//
//   $ ./example_random_beacon
#include <cstdio>

#include "app/beacon.hpp"
#include "dkg/runner.hpp"

using namespace dkg;

int main() {
  core::RunnerConfig cfg;
  cfg.grp = &crypto::Group::small512();
  cfg.n = 10;
  cfg.t = 3;
  cfg.f = 0;
  cfg.seed = 777;

  std::printf("bootstrapping beacon committee (n=%zu, t=%zu) via DKG...\n", cfg.n, cfg.t);
  core::DkgRunner runner(cfg);
  runner.start_all();
  if (!runner.run_to_completion() || !runner.outputs_consistent()) return 1;
  crypto::FeldmanVector vec = *runner.dkg_node(1).output().share_vec;
  std::vector<crypto::SecretScalar> shares{crypto::SecretScalar{}};
  for (sim::NodeId i = 1; i <= cfg.n; ++i) shares.push_back(runner.dkg_node(i).output().share);
  std::printf("committee key: %s...\n\n", to_hex(vec.c0().to_bytes()).substr(0, 32).c_str());

  const crypto::Group& grp = *cfg.grp;
  for (std::uint64_t round = 1; round <= 5; ++round) {
    // A different subset of t+1 nodes evaluates each round (rotation), and
    // one of them occasionally tries to forge.
    std::vector<app::BeaconShare> contributions;
    std::size_t forged = 0;
    for (std::uint64_t k = 0; k <= cfg.t + 1; ++k) {
      std::uint64_t i = (round + k * 2) % cfg.n + 1;
      bool forge = (round == 3 && k == 0);
      contributions.push_back(app::beacon_evaluate(
          grp, round, i, forge ? shares[i % cfg.n + 1] : shares[i]));
      if (forge) ++forged;
    }
    std::size_t valid = 0;
    for (const auto& c : contributions) valid += app::beacon_verify_share(vec, c) ? 1 : 0;
    auto out = app::beacon_combine(vec, cfg.t, round, contributions);
    std::printf("round %llu: %zu contributions (%zu forged, %zu valid) -> %s\n",
                static_cast<unsigned long long>(round), contributions.size(), forged, valid,
                out ? to_hex(*out).substr(0, 32).c_str() : "INSUFFICIENT");
    // Cross-check uniqueness with a disjoint committee subset.
    if (out) {
      std::vector<app::BeaconShare> other;
      for (std::uint64_t i = 1; i <= cfg.t + 1; ++i) {
        other.push_back(app::beacon_evaluate(grp, round, i, shares[i]));
      }
      auto out2 = app::beacon_combine(vec, cfg.t, round, other);
      std::printf("          disjoint subset agrees: %s\n",
                  out2 && *out2 == *out ? "yes (unique VUF output)" : "NO");
    }
  }
  return 0;
}
