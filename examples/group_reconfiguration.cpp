// Group modification (paper §6): members agree on membership changes via
// reliable broadcast, then execute node addition — the joining node obtains
// a share of the existing secret without any renewal and without anyone
// learning anything, and existing shares remain untouched.
//
//   $ ./example_group_reconfiguration
#include <cstdio>

#include "crypto/lagrange.hpp"
#include "groupmod/agreement.hpp"
#include "groupmod/node_add.hpp"
#include "proactive/runner.hpp"

using namespace dkg;

int main() {
  core::RunnerConfig cfg;
  cfg.grp = &crypto::Group::small512();
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = 99;

  std::printf("bootstrapping a 7-node group (t=1, f=1) via DKG...\n");
  proactive::ProactiveRunner boot(cfg);
  if (!boot.run_dkg()) return 1;
  crypto::Element pk = boot.public_key();
  std::printf("group key: %s...\n\n", to_hex(pk.to_bytes()).substr(0, 32).c_str());

  // --- §6.1: agree on the modification proposal -------------------------
  std::printf("P3 proposes: ADD node P8 (size change absorbs into crash-limit f)\n");
  groupmod::GmParams gm{cfg.n, cfg.t, cfg.f};
  sim::Simulator agree_sim(cfg.n, std::make_unique<sim::UniformDelay>(5, 40), 7);
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    agree_sim.set_node(i, std::make_unique<groupmod::GroupModNode>(gm, i));
  }
  groupmod::Proposal prop{groupmod::ModKind::AddNode, 8, groupmod::Absorb::CrashLimit, 3};
  agree_sim.post_operator(3, std::make_shared<groupmod::ProposeOp>(prop), 0);
  agree_sim.run();
  std::size_t accepted = 0;
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    accepted += dynamic_cast<groupmod::GroupModNode&>(agree_sim.node(i)).queue().size();
  }
  std::printf("modification queues: %zu/%zu nodes accepted the proposal\n", accepted, cfg.n);

  groupmod::Membership before{cfg.n, cfg.t, cfg.f};
  auto [after, applied] = before.apply_queue({prop});
  std::printf("membership: n=%zu t=%zu f=%zu  ->  n=%zu t=%zu f=%zu (resilient: %s)\n\n",
              before.n, before.t, before.f, after.n, after.t, after.f,
              after.resilient() ? "yes" : "no");

  // --- §6.2: node addition protocol --------------------------------------
  std::printf("executing node addition for P8...\n");
  auto keyring = crypto::Keyring::generate(*cfg.grp, cfg.n, cfg.seed ^ 0x9e3779b97f4a7c15ULL);
  core::DkgParams params;
  params.vss.grp = cfg.grp;
  params.vss.n = cfg.n;
  params.vss.t = cfg.t;
  params.vss.f = cfg.f;
  params.vss.keyring = keyring;
  params.tau = 2;
  params.timeout_base = 20'000;

  sim::Simulator sim(cfg.n, std::make_unique<sim::UniformDelay>(5, 40), cfg.seed);
  sim::NodeId new_id = sim.add_node_slot();
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    sim.set_node(i, std::make_unique<groupmod::NodeAddNode>(params, i, boot.states()[i], new_id));
  }
  auto joining = std::make_unique<groupmod::JoiningNode>(*cfg.grp, cfg.t, new_id, params.tau);
  groupmod::JoiningNode* j = joining.get();
  sim.set_node(new_id, std::move(joining));
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    sim.post_operator(i, std::make_shared<core::DkgStartOp>(params.tau, std::nullopt), 0);
  }
  sim.run_until([&] { return j->has_share(); });
  if (!j->has_share()) {
    std::printf("node addition FAILED\n");
    return 1;
  }
  std::printf("P8 obtained share: %s...\n",
              to_hex(j->share().reveal_bytes()).substr(0, 16).c_str());
  std::printf("share lies on the ORIGINAL sharing polynomial: %s\n",
              boot.states()[1].commitment.verify_share(8, j->share().reveal()) ? "yes" : "NO");

  // Old share (P1) + new share (P8) reconstruct the same secret.
  std::vector<std::pair<std::uint64_t, crypto::Scalar>> pts{
      {1, boot.states()[1].share.reveal()}, {8, j->share().reveal()}};
  crypto::Scalar secret = crypto::interpolate_at(*cfg.grp, pts, 0);
  std::printf("old+new share reconstruction matches group key: %s\n",
              crypto::Element::exp_g(secret) == pk ? "yes" : "NO");
  std::printf("existing shares untouched (no renewal happened): yes by construction\n");
  return 0;
}
