// Quickstart: run the asynchronous DKG of Kate & Goldberg (ICDCS'09) among
// n simulated Internet nodes, inspect the outputs, and reconstruct the
// secret from t+1 shares (something no deployment would do — shown here to
// demonstrate consistency).
//
//   $ ./example_quickstart
#include <cstdio>

#include "dkg/runner.hpp"

int main() {
  using namespace dkg;

  // n >= 3t + 2f + 1: 10 nodes tolerating t = 2 Byzantine and f = 1 crashed.
  core::RunnerConfig cfg;
  cfg.grp = &crypto::Group::small512();
  cfg.n = 10;
  cfg.t = 2;
  cfg.f = 1;
  cfg.seed = 20090612;

  std::printf("HybridDKG quickstart: n=%zu t=%zu f=%zu over %s\n", cfg.n, cfg.t, cfg.f,
              cfg.grp->name().c_str());

  core::DkgRunner runner(cfg);
  runner.start_all();
  if (!runner.run_to_completion()) {
    std::printf("simulation did not converge\n");
    return 1;
  }

  const core::DkgOutput& out = runner.dkg_node(1).output();
  std::printf("\nDKG completed at simulated time %llu\n",
              static_cast<unsigned long long>(runner.simulator().now()));
  std::printf("agreed dealer set Q = { ");
  for (sim::NodeId d : out.q) std::printf("P%u ", d);
  std::printf("}\n");
  std::printf("group public key y = g^s = %s...\n",
              to_hex(out.public_key.to_bytes()).substr(0, 32).c_str());
  std::printf("consistency across nodes: %s\n",
              runner.outputs_consistent() ? "OK" : "VIOLATED");

  std::printf("\nper-node shares (each verifies against the commitment):\n");
  for (sim::NodeId i = 1; i <= cfg.n; ++i) {
    const core::DkgOutput& o = runner.dkg_node(i).output();
    bool ok = out.share_vec->verify_share(i, o.share.reveal());
    std::printf("  P%-2u  s_%u = %s...  verify=%s\n", i, i,
                to_hex(o.share.reveal_bytes()).substr(0, 16).c_str(), ok ? "OK" : "FAIL");
  }

  crypto::Scalar secret = runner.reconstruct_secret();
  std::printf("\nreconstructed secret (t+1 shares): %s...\n",
              to_hex(secret.to_bytes()).substr(0, 16).c_str());
  std::printf("g^secret == public key: %s\n",
              crypto::Element::exp_g(secret) == out.public_key ? "OK" : "FAIL");

  const sim::Metrics& m = runner.simulator().metrics();
  std::printf("\ntraffic: %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(m.total_messages()),
              static_cast<unsigned long long>(m.total_bytes()));
  return 0;
}
