// Proactive security in action (paper §5): a long-lived service renews its
// shares at every phase boundary, so a mobile adversary that compromises t
// nodes per phase — more than t in total across phases — still learns
// nothing. One node crashes mid-phase and recovers its share (§5.3).
//
//   $ ./example_proactive_service
#include <cstdio>

#include "proactive/runner.hpp"

using namespace dkg;

int main() {
  core::RunnerConfig cfg;
  cfg.grp = &crypto::Group::small512();
  cfg.n = 7;
  cfg.t = 1;
  cfg.f = 1;
  cfg.seed = 555;

  proactive::ProactiveRunner service(cfg);
  std::printf("phase 1: distributed key generation...\n");
  if (!service.run_dkg()) return 1;
  crypto::Element pk = service.public_key();
  std::printf("  public key: %s...\n", to_hex(pk.to_bytes()).substr(0, 32).c_str());

  // The mobile adversary's notebook: shares it stole in each phase.
  std::vector<std::pair<std::uint32_t, proactive::ShareState>> stolen;
  stolen.emplace_back(1, service.states()[2]);  // compromises P2 in phase 1

  for (int phase = 2; phase <= 4; ++phase) {
    std::vector<sim::NodeId> crashed;
    if (phase == 3) crashed.push_back(6);  // P6 crashes and recovers mid-phase
    std::printf("phase %d: share renewal%s...\n", phase,
                crashed.empty() ? "" : " (P6 crashes and recovers)");
    if (!service.run_renewal(crashed)) {
      std::printf("  renewal FAILED\n");
      return 1;
    }
    std::printf("  public key unchanged: %s; all shares verify: %s\n",
                service.public_key() == pk ? "yes" : "NO",
                service.shares_consistent() ? "yes" : "NO");
    stolen.emplace_back(phase, service.states()[phase % 7 + 1]);  // steals another node
  }

  // The adversary now holds shares from 4 different nodes — but from
  // different phases. Within any single phase it never exceeded t = 1.
  std::printf("\nadversary stole %zu shares across phases (t = %zu per phase)\n", stolen.size(),
              cfg.t);
  std::size_t usable = 0;
  for (const auto& [phase, st] : stolen) {
    // Does this old share still verify against the CURRENT commitment?
    bool valid_now = false;
    for (sim::NodeId i = 1; i <= cfg.n; ++i) {
      if (service.states()[i].commitment.verify_share(i, st.share.reveal())) valid_now = true;
    }
    std::printf("  phase-%u share: %s\n", phase,
                valid_now ? "usable (current phase — within the t-per-phase bound)"
                          : "useless after renewal");
    usable += valid_now ? 1 : 0;
  }
  std::printf("usable stolen shares: %zu -> the gradual break-in %s\n", usable,
              usable <= cfg.t ? "failed" : "SUCCEEDED");

  crypto::Scalar secret = service.reconstruct();
  std::printf("\nservice secret still intact: g^s == pk: %s\n",
              crypto::Element::exp_g(secret) == pk ? "yes" : "NO");
  return 0;
}
